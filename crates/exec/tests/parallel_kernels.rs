//! Determinism properties of the morsel-parallel operator kernels.
//!
//! The contract under test (DESIGN.md §10): every pool-driven kernel is
//! **byte-identical** to its serial counterpart for every worker count,
//! because morsel boundaries depend only on the input length and outputs
//! merge in morsel order. A worker pool is a performance knob, never a
//! semantics knob.

use paradise_exec::cluster::{Cluster, ClusterConfig};
use paradise_exec::ops::aggregate::{local_aggregate, local_aggregate_with, AggRegistry};
use paradise_exec::ops::basic::{par_project, par_select, project, select};
use paradise_exec::ops::join::{hash_join, hash_join_with};
use paradise_exec::ops::spatial_join::{local_tile_join, local_tile_join_quadratic};
use paradise_exec::value::Value;
use paradise_exec::workers::{PoolMode, WorkerPool};
use paradise_exec::Tuple;
use paradise_geom::{Point, Polyline, Shape};
use std::sync::Arc;

/// The worker counts every property is checked against. 1 must reproduce
/// the serial kernels exactly; the rest exercise real thread scheduling
/// (including a count that does not divide typical morsel counts evenly).
const WORKER_COUNTS: [usize; 4] = [1, 2, 4, 7];

/// Deterministic xorshift for reproducible "random" inputs.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }
    fn f64(&mut self) -> f64 {
        (self.next() % 10_000) as f64 / 10.0 - 500.0
    }
}

fn rows(n: usize, seed: u64) -> Vec<Tuple> {
    let mut rng = Rng(seed);
    (0..n)
        .map(|i| {
            Tuple::new(vec![
                Value::Int((rng.next() % 97) as i64),
                Value::Float(rng.f64()),
                Value::Str(format!("row-{i}")),
            ])
        })
        .collect()
}

#[test]
fn par_select_is_byte_identical_to_serial() {
    // 2500 rows → 3 morsels at TUPLE_MORSEL=1024.
    let input = rows(2500, 7);
    let pred = |t: &Tuple| Ok(t.get(0)?.as_int()? % 3 == 0);
    let expected = select(input.clone(), pred).unwrap();
    for w in WORKER_COUNTS {
        let pool = WorkerPool::new(w);
        let got = par_select(&pool, input.clone(), pred).unwrap();
        assert_eq!(got, expected, "par_select diverged at {w} workers");
    }
}

#[test]
fn par_project_is_byte_identical_to_serial() {
    let input = rows(3000, 11);
    let map_ref = |t: &Tuple| {
        let f = t.get(1)?.as_float()?;
        if f < 0.0 {
            return Ok(None); // dropped tuple, like an empty clip
        }
        Ok(Some(Tuple::new(vec![Value::Float(f * 2.0)])))
    };
    let expected = project(input.clone(), |t| map_ref(&t)).unwrap();
    for w in WORKER_COUNTS {
        let pool = WorkerPool::new(w);
        let got = par_project(&pool, &input, map_ref).unwrap();
        assert_eq!(got, expected, "par_project diverged at {w} workers");
    }
}

#[test]
fn hash_join_with_is_byte_identical_to_serial() {
    let left = rows(600, 23);
    let right = rows(900, 41);
    // Tiny budget → many buckets → several bucket morsels.
    let expected = hash_join(&left, 0, &right, 0, 512).unwrap();
    assert!(!expected.is_empty(), "join should produce matches");
    for w in WORKER_COUNTS {
        let pool = WorkerPool::new(w);
        let got = hash_join_with(&pool, &left, 0, &right, 0, 512).unwrap();
        assert_eq!(got, expected, "hash_join diverged at {w} workers");
    }
}

#[test]
fn local_aggregate_with_is_identical_across_worker_counts() {
    // Floats with arbitrary values: the morselized fold has a fixed
    // association order (morsel boundaries never depend on the pool), so
    // the result must be bit-identical for every worker count.
    let input = rows(2500, 57);
    let registry = AggRegistry::with_builtins();
    let agg = registry.get("sum").unwrap();
    // Aggregate input column is 0 by convention: project (float, group).
    let agg_input: Vec<Tuple> = input
        .iter()
        .map(|t| Tuple::new(vec![t.get(1).unwrap().clone(), t.get(0).unwrap().clone()]))
        .collect();
    let reference = {
        let pool = WorkerPool::new(1);
        local_aggregate_with(&pool, &agg_input, &[1], agg).unwrap()
    };
    for w in WORKER_COUNTS {
        let pool = WorkerPool::new(w);
        let got = local_aggregate_with(&pool, &agg_input, &[1], agg).unwrap();
        assert_eq!(got, reference, "local_aggregate diverged at {w} workers");
    }
}

#[test]
fn local_aggregate_with_matches_serial_on_exact_values() {
    // Integer-valued floats are exactly summable in any association order,
    // so the morselized fold must equal the plain serial fold too.
    let mut rng = Rng(99);
    let agg_input: Vec<Tuple> = (0..2200)
        .map(|_| {
            Tuple::new(vec![
                Value::Float((rng.next() % 1000) as f64),
                Value::Int((rng.next() % 13) as i64),
            ])
        })
        .collect();
    let registry = AggRegistry::with_builtins();
    for name in ["sum", "count", "avg", "min", "max"] {
        let agg = registry.get(name).unwrap();
        let expected = local_aggregate(&agg_input, &[1], agg).unwrap();
        for w in WORKER_COUNTS {
            let pool = WorkerPool::new(w);
            let got = local_aggregate_with(&pool, &agg_input, &[1], agg).unwrap();
            assert_eq!(got, expected, "{name} diverged at {w} workers");
        }
    }
}

fn line(id: &str, pts: &[(f64, f64)]) -> Tuple {
    Tuple::new(vec![
        Value::Str(id.into()),
        Value::Shape(Shape::Polyline(
            Polyline::new(pts.iter().map(|&(x, y)| Point::new(x, y)).collect()).unwrap(),
        )),
    ])
}

fn random_segments(n: usize, seed: u64) -> Vec<Tuple> {
    let mut rng = Rng(seed);
    (0..n)
        .map(|i| {
            let (x, y) = (rng.f64() / 3.0, rng.f64() / 6.0);
            let (dx, dy) = (rng.f64() / 20.0, rng.f64() / 30.0);
            line(&format!("s{seed}-{i}"), &[(x, y), (x + dx, y + dy)])
        })
        .collect()
}

#[test]
fn plane_sweep_join_matches_quadratic_and_is_pool_invariant() {
    let cluster = Cluster::create(&ClusterConfig::for_test(2, "pk-sweep")).unwrap();
    let left = random_segments(150, 3);
    let right = random_segments(150, 5);
    for node in 0..2 {
        let expected = local_tile_join_quadratic(&cluster, node, &left, 1, &right, 1).unwrap();
        for w in WORKER_COUNTS {
            cluster.set_workers(Arc::new(WorkerPool::new(w)));
            let got = local_tile_join(&cluster, node, &left, 1, &right, 1).unwrap();
            // Same pair set: the sweep only changes candidate-enumeration
            // order within a tile, so compare as multisets of pairs.
            let key = |t: &Tuple| format!("{t:?}");
            let mut a: Vec<String> = got.iter().map(key).collect();
            let mut b: Vec<String> = expected.iter().map(key).collect();
            a.sort();
            b.sort();
            assert_eq!(a, b, "sweep != quadratic on node {node} at {w} workers");
        }
        // And across worker counts the output must be byte-identical
        // (same order, not just the same set).
        cluster.set_workers(Arc::new(WorkerPool::new(1)));
        let serial = local_tile_join(&cluster, node, &left, 1, &right, 1).unwrap();
        for w in WORKER_COUNTS {
            cluster.set_workers(Arc::new(WorkerPool::new(w)));
            let got = local_tile_join(&cluster, node, &left, 1, &right, 1).unwrap();
            assert_eq!(got, serial, "tile join order diverged at {w} workers");
        }
    }
}

#[test]
fn reference_point_rule_is_per_tile_not_per_morsel() {
    // Regression for the PBSM duplicate-elimination rule. Two long
    // crossing diagonals span far more tiles than one TILE_MORSEL (8), so
    // the same candidate pair appears in tile buckets belonging to
    // *different morsels*. If the reference-point rule were evaluated per
    // morsel (e.g. "report in the first tile of my morsel that sees the
    // pair"), every morsel containing a shared tile would report the pair
    // once and the join would double-count. Per-tile evaluation reports it
    // exactly once regardless of how tiles are sliced into morsels.
    let cluster = Cluster::create(&ClusterConfig::for_test(1, "pk-refpoint")).unwrap();
    let l = vec![line("diag-up", &[(-170.0, -85.0), (170.0, 85.0)])];
    let r = vec![line("diag-down", &[(-170.0, 85.0), (170.0, -85.0)])];
    let before = cluster.workers().snapshot();
    let out = local_tile_join(&cluster, 0, &l, 1, &r, 1).unwrap();
    let delta = cluster.workers().snapshot().since(&before);
    assert!(
        delta.morsels > 1,
        "workload must span several morsels for this regression to bite (got {})",
        delta.morsels
    );
    assert_eq!(out.len(), 1, "pair must be reported exactly once, not per morsel");
    // The same invariant for every pool size, including the measured mode
    // the benchmark uses.
    for w in WORKER_COUNTS {
        cluster.set_workers(Arc::new(WorkerPool::new(w)));
        assert_eq!(local_tile_join(&cluster, 0, &l, 1, &r, 1).unwrap().len(), 1);
    }
    cluster.set_workers(Arc::new(WorkerPool::measured(4)));
    assert_eq!(cluster.workers().mode(), PoolMode::Measured);
    assert_eq!(local_tile_join(&cluster, 0, &l, 1, &r, 1).unwrap().len(), 1);
}

#[test]
fn with_workers_one_reproduces_serial_engine_output() {
    // The pool handle defaults to the configured size; forcing 1 worker
    // must not change any kernel output (checked above per kernel). Here:
    // the end-to-end spatial join through a cluster whose pool is swapped
    // between 1 and 7 workers mid-flight.
    let cluster = Cluster::create(&ClusterConfig::for_test(2, "pk-swap")).unwrap();
    let left = random_segments(120, 13);
    let right = random_segments(120, 17);
    cluster.set_workers(Arc::new(WorkerPool::new(1)));
    let serial: Vec<Vec<Tuple>> =
        (0..2).map(|n| local_tile_join(&cluster, n, &left, 1, &right, 1).unwrap()).collect();
    cluster.set_workers(Arc::new(WorkerPool::new(7)));
    let parallel: Vec<Vec<Tuple>> =
        (0..2).map(|n| local_tile_join(&cluster, n, &left, 1, &right, 1).unwrap()).collect();
    assert_eq!(serial, parallel);
    assert!(serial.iter().map(Vec::len).sum::<usize>() > 0, "join should produce pairs");
}
