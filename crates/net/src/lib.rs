//! # paradise-net
//!
//! The wire protocol and TCP transport behind Paradise's QC/DS execution
//! (paper §2.2, Figure 2.1): a Query Coordinator talking to one Data
//! Server per node over real sockets.
//!
//! The engine (`paradise-exec`) defines the transport interface
//! ([`paradise_exec::WireTransport`]) and runs every operator against the
//! transport-independent `TupleTx`/`TupleRx` streams; this crate supplies
//! the TCP implementation:
//!
//! * [`frame`] — length-prefixed binary frames (tuples, credits, tile
//!   pulls, remote scans);
//! * [`flow`] — credit-based flow control mirroring the bounded-channel
//!   windows of local streams, so backpressure behaves identically on
//!   both transports;
//! * [`conn`] — connect/read timeouts and bounded exponential-backoff
//!   retry;
//! * [`server`] — the data-server accept loop (tuple streams, §2.5.2 tile
//!   pulls, remote fragment scans);
//! * [`transport`] — [`TcpTransport`], the [`paradise_exec::WireTransport`]
//!   implementation a cluster installs with
//!   `cluster.set_transport(Transport::Tcp(t))`.
//!
//! Large attributes keep the paper's pull model on the wire: a stored
//! raster's tuple carries only its tile mapping table; pixel tiles move
//! as explicit [`frame::Frame::PullTile`] requests when an operator needs
//! them.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod conn;
pub mod flow;
pub mod frame;
pub mod server;
pub mod transport;

pub use conn::NetConfig;
pub use server::DataServer;
pub use transport::{TcpTransport, WireStats};
