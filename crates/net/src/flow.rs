//! Credit-based flow control.
//!
//! A wire stream mirrors the semantics of the engine's bounded channels
//! (`mem_stream`/`network_stream` with a window of `W` tuples): at most
//! `W` tuples are in flight between sender and receiver, and a sender
//! whose receiver stalls blocks — identical backpressure behaviour on
//! both transports.
//!
//! Mechanically: the sender starts with `W` credits ([`CreditGate`]),
//! spends one per tuple, and blocks (bounded by a timeout) at zero. The
//! receiving side buffers tuples in a bounded [`Inbox`]; each consumer
//! `pop` returns one credit to the sender as a [`Frame::Credit`] on the
//! reverse direction of the same TCP connection.
//!
//! Every wait here is bounded: a sender that never receives credit fails
//! with a flow-control timeout (and a `flow.stall` event), and a consumer
//! whose producer goes silent fails with a receive timeout. A dead or
//! stalled peer therefore surfaces as a clean per-query error, never a
//! hang.

use crate::frame::{write_frame, Frame};
use paradise_exec::{ExecError, Result, Tuple};
use paradise_obs::EventLog;
use paradise_util::failpoint;
use std::collections::VecDeque;
use std::io::Write;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

fn lock_err<T>(e: std::sync::PoisonError<T>) -> T {
    e.into_inner()
}

struct GateState {
    credits: u64,
    closed: Option<String>,
}

/// Sender-side credit counter: `acquire` blocks until the receiver has
/// granted room (or the link dies / the wait times out).
pub struct CreditGate {
    state: Mutex<GateState>,
    cv: Condvar,
    events: Option<Arc<EventLog>>,
}

impl CreditGate {
    /// A gate holding `initial` credits (the stream's window).
    pub fn new(initial: u64) -> CreditGate {
        CreditGate {
            state: Mutex::new(GateState { credits: initial, closed: None }),
            cv: Condvar::new(),
            events: None,
        }
    }

    /// A gate that reports flow-control stalls to `events`.
    pub fn with_events(initial: u64, events: Option<Arc<EventLog>>) -> CreditGate {
        CreditGate { events, ..CreditGate::new(initial) }
    }

    /// Takes one credit, waiting up to `timeout` for the receiver.
    pub fn acquire(&self, timeout: Duration) -> Result<()> {
        let deadline = Instant::now() + timeout;
        let mut st = self.state.lock().unwrap_or_else(lock_err);
        loop {
            if let Some(reason) = &st.closed {
                return Err(ExecError::Other(format!("stream closed: {reason}")));
            }
            if st.credits > 0 {
                st.credits -= 1;
                return Ok(());
            }
            let now = Instant::now();
            if now >= deadline {
                if let Some(events) = &self.events {
                    events
                        .emit("flow.stall", &[("timeout_ms", (timeout.as_millis() as u64).into())]);
                }
                return Err(ExecError::Other(
                    "flow-control timeout: receiver granted no credit (stalled or dead peer)"
                        .into(),
                ));
            }
            let (guard, _) = self.cv.wait_timeout(st, deadline - now).unwrap_or_else(lock_err);
            st = guard;
        }
    }

    /// Returns `n` credits (receiver consumed `n` tuples).
    pub fn grant(&self, n: u64) {
        let mut st = self.state.lock().unwrap_or_else(lock_err);
        st.credits += n;
        self.cv.notify_all();
    }

    /// Marks the stream dead; pending and future `acquire`s fail fast.
    pub fn close(&self, reason: &str) {
        let mut st = self.state.lock().unwrap_or_else(lock_err);
        if st.closed.is_none() {
            st.closed = Some(reason.to_string());
        }
        self.cv.notify_all();
    }
}

/// How long a consumer waits for the *next* tuple before declaring the
/// producer dead, when no explicit timeout is configured.
pub const DEFAULT_RECV_TIMEOUT: Duration = Duration::from_secs(30);

struct InboxState {
    queue: VecDeque<Tuple>,
    eos: bool,
    error: Option<String>,
}

/// Receiver-side bounded tuple buffer (capacity = the stream window).
pub struct Inbox {
    state: Mutex<InboxState>,
    cv: Condvar,
    capacity: usize,
    recv_timeout: Duration,
    /// Reverse direction of the stream's connection, used to return
    /// credits from the consumer thread. Deliberately *outside* the state
    /// mutex: a credit write to a blocked socket must never hold up the
    /// connection reader's `push`.
    credit_sink: Mutex<Option<Box<dyn Write + Send>>>,
}

impl Inbox {
    /// An empty inbox holding at most `capacity` tuples, with the default
    /// per-tuple receive timeout.
    pub fn new(capacity: usize) -> Inbox {
        Inbox::with_timeout(capacity, DEFAULT_RECV_TIMEOUT)
    }

    /// An empty inbox whose `pop` waits at most `recv_timeout` for the
    /// next tuple before declaring the producer stalled or dead.
    pub fn with_timeout(capacity: usize, recv_timeout: Duration) -> Inbox {
        Inbox {
            state: Mutex::new(InboxState { queue: VecDeque::new(), eos: false, error: None }),
            cv: Condvar::new(),
            capacity: capacity.max(1),
            recv_timeout,
            credit_sink: Mutex::new(None),
        }
    }

    /// Attaches the connection on which `pop` returns credits.
    pub fn set_credit_sink(&self, conn: impl Write + Send + 'static) {
        *self.credit_sink.lock().unwrap_or_else(lock_err) = Some(Box::new(conn));
    }

    /// Enqueues a received tuple (called by the connection reader). Blocks
    /// while the buffer is full — with a well-behaved peer this never
    /// happens, because credits bound the tuples in flight. Returns `false`
    /// (discarding the tuple) once the stream is terminal: the consumer
    /// saw EOS, the link died, or the receiver was dropped — the reader
    /// must stop, not block forever against a consumer that will never
    /// pop again.
    #[must_use]
    pub fn push(&self, t: Tuple) -> bool {
        let mut st = self.state.lock().unwrap_or_else(lock_err);
        loop {
            if st.eos || st.error.is_some() {
                return false;
            }
            if st.queue.len() < self.capacity {
                st.queue.push_back(t);
                self.cv.notify_all();
                return true;
            }
            st = self.cv.wait(st).unwrap_or_else(lock_err);
        }
    }

    /// Marks the stream complete (peer sent EOS) and wakes any blocked
    /// pusher or popper.
    pub fn finish(&self) {
        let mut st = self.state.lock().unwrap_or_else(lock_err);
        st.eos = true;
        self.cv.notify_all();
    }

    /// Marks the stream broken (peer died / protocol error) and wakes any
    /// blocked pusher or popper.
    pub fn fail(&self, reason: &str) {
        let mut st = self.state.lock().unwrap_or_else(lock_err);
        if st.error.is_none() {
            st.error = Some(reason.to_string());
        }
        self.cv.notify_all();
    }

    /// Declares the consuming side gone (the receiver handle was dropped
    /// before EOS). Blocked pushers bail out instead of waiting on pops
    /// that will never come.
    pub fn close_receiver(&self) {
        let mut st = self.state.lock().unwrap_or_else(lock_err);
        if !st.eos && st.error.is_none() {
            st.error = Some("receiver dropped before EOS".to_string());
        }
        st.queue.clear();
        self.cv.notify_all();
    }

    /// Dequeues the next tuple, blocking until one arrives, the peer
    /// finishes, the link dies, or the per-tuple receive timeout expires
    /// (a producer gone silent is a dead peer, not a reason to hang).
    /// Returns `None` on EOS *and* on failure — check [`Inbox::error`] to
    /// distinguish. Each successful pop returns one credit to the sender,
    /// written *after* the inbox lock is released.
    pub fn pop(&self) -> Option<Tuple> {
        let deadline = Instant::now() + self.recv_timeout;
        let popped = {
            let mut st = self.state.lock().unwrap_or_else(lock_err);
            loop {
                if let Some(t) = st.queue.pop_front() {
                    self.cv.notify_all();
                    break Some(t);
                }
                if st.eos || st.error.is_some() {
                    break None;
                }
                let now = Instant::now();
                if now >= deadline {
                    st.error = Some(format!(
                        "stream receive timeout after {} ms (stalled or dead peer)",
                        self.recv_timeout.as_millis()
                    ));
                    self.cv.notify_all();
                    break None;
                }
                let (guard, _) = self.cv.wait_timeout(st, deadline - now).unwrap_or_else(lock_err);
                st = guard;
            }
        };
        if popped.is_some() {
            // Return the credit on the reverse channel, outside the state
            // lock. Write failures mean the sender is gone; its own error
            // handling covers that. `net.credit` injects grant loss.
            if failpoint::trigger("net.credit").is_none() {
                let mut sink = self.credit_sink.lock().unwrap_or_else(lock_err);
                if let Some(conn) = sink.as_mut() {
                    let _ = write_frame(conn, &Frame::Credit(1));
                }
            }
        }
        popped
    }

    /// The abnormal-termination reason, if the link died.
    pub fn error(&self) -> Option<String> {
        self.state.lock().unwrap_or_else(lock_err).error.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use paradise_exec::value::Value;
    use std::sync::mpsc;
    use std::sync::Arc;

    fn tuple(v: i64) -> Tuple {
        Tuple::new(vec![Value::Int(v)])
    }

    #[test]
    fn gate_blocks_and_unblocks() {
        let gate = Arc::new(CreditGate::new(2));
        gate.acquire(Duration::from_millis(10)).unwrap();
        gate.acquire(Duration::from_millis(10)).unwrap();
        // Exhausted: acquire times out.
        assert!(gate.acquire(Duration::from_millis(20)).is_err());
        // A concurrent grant unblocks a waiting acquire.
        let g2 = gate.clone();
        let waiter = std::thread::spawn(move || g2.acquire(Duration::from_secs(5)));
        std::thread::sleep(Duration::from_millis(10));
        gate.grant(1);
        waiter.join().unwrap().unwrap();
    }

    #[test]
    fn gate_close_fails_fast() {
        let gate = Arc::new(CreditGate::new(0));
        let g2 = gate.clone();
        let waiter = std::thread::spawn(move || g2.acquire(Duration::from_secs(30)));
        std::thread::sleep(Duration::from_millis(10));
        gate.close("peer died");
        let err = waiter.join().unwrap().unwrap_err();
        assert!(err.to_string().contains("peer died"), "{err}");
    }

    #[test]
    fn inbox_pop_blocks_until_push_and_drains_after_eos() {
        let inbox = Arc::new(Inbox::new(4));
        let i2 = inbox.clone();
        let consumer = std::thread::spawn(move || {
            let mut got = Vec::new();
            while let Some(t) = i2.pop() {
                got.push(t);
            }
            got
        });
        for v in 0..3 {
            assert!(inbox.push(tuple(v)));
        }
        inbox.finish();
        let got = consumer.join().unwrap();
        assert_eq!(got.len(), 3);
        assert!(inbox.error().is_none());
    }

    #[test]
    fn inbox_fail_wakes_consumer() {
        let inbox = Arc::new(Inbox::new(4));
        let i2 = inbox.clone();
        let consumer = std::thread::spawn(move || i2.pop());
        std::thread::sleep(Duration::from_millis(10));
        inbox.fail("connection reset");
        assert!(consumer.join().unwrap().is_none());
        assert_eq!(inbox.error().unwrap(), "connection reset");
    }

    /// A credit sink that blocks every write until released — a stand-in
    /// for a TCP socket whose peer stopped draining its receive buffer.
    struct StalledWriter {
        release: Arc<(Mutex<bool>, Condvar)>,
    }

    impl StalledWriter {
        fn new() -> (StalledWriter, Arc<(Mutex<bool>, Condvar)>) {
            let release = Arc::new((Mutex::new(false), Condvar::new()));
            (StalledWriter { release: release.clone() }, release)
        }
    }

    impl Write for StalledWriter {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            let (m, cv) = &*self.release;
            let mut open = m.lock().unwrap();
            while !*open {
                open = cv.wait(open).unwrap();
            }
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    /// Regression (flow.rs:175 bug): `pop` used to write the credit frame
    /// while holding the inbox mutex, so a stalled credit socket wedged
    /// the reader's `push` and deadlocked the stream. The credit write
    /// must happen outside the lock: a popped slot is immediately
    /// pushable even while the credit write blocks.
    #[test]
    fn stalled_credit_write_does_not_block_push() {
        let inbox = Arc::new(Inbox::new(2));
        let (writer, release) = StalledWriter::new();
        inbox.set_credit_sink(writer);
        assert!(inbox.push(tuple(1)));
        assert!(inbox.push(tuple(2)));
        // Consumer pops one tuple, then blocks inside the credit write.
        let i2 = inbox.clone();
        let consumer = std::thread::spawn(move || i2.pop());
        std::thread::sleep(Duration::from_millis(30));
        // Reader pushes into the freed slot; pre-fix this deadlocked
        // against the in-flight credit write.
        let i3 = inbox.clone();
        let (done_tx, done_rx) = mpsc::channel();
        std::thread::spawn(move || {
            let ok = i3.push(tuple(3));
            done_tx.send(ok).unwrap();
        });
        let pushed = done_rx
            .recv_timeout(Duration::from_secs(2))
            .expect("push must not block behind a stalled credit write");
        assert!(pushed);
        // Unblock the credit write and drain.
        {
            let (m, cv) = &*release;
            *m.lock().unwrap() = true;
            cv.notify_all();
        }
        assert!(consumer.join().unwrap().is_some());
    }

    /// Regression (flow.rs:141 bug): a full inbox whose stream went
    /// terminal (fail, EOS, or dropped receiver) used to block `push`
    /// forever — `finish`/`fail`/`close_receiver` must wake pushers, and
    /// `push` must bail out instead of enqueueing into a dead stream.
    #[test]
    fn push_bails_out_once_stream_is_terminal() {
        for terminate in [
            (|i: &Inbox| i.fail("connection reset")) as fn(&Inbox),
            |i| i.finish(),
            |i| i.close_receiver(),
        ] {
            let inbox = Arc::new(Inbox::new(1));
            assert!(inbox.push(tuple(1)));
            let i2 = inbox.clone();
            let (done_tx, done_rx) = mpsc::channel();
            std::thread::spawn(move || {
                let ok = i2.push(tuple(2)); // blocks: inbox full
                done_tx.send(ok).unwrap();
            });
            std::thread::sleep(Duration::from_millis(20));
            terminate(&inbox);
            let pushed = done_rx
                .recv_timeout(Duration::from_secs(2))
                .expect("terminal stream must release blocked pushers");
            assert!(!pushed, "push into a terminal stream must report failure");
        }
    }

    #[test]
    fn dropped_receiver_reports_as_link_error() {
        let inbox = Inbox::new(4);
        assert!(inbox.push(tuple(1)));
        inbox.close_receiver();
        assert!(inbox.error().unwrap().contains("receiver dropped"), "{:?}", inbox.error());
        assert!(!inbox.push(tuple(2)));
        // A receiver dropped *after* EOS is normal completion, not an error.
        let done = Inbox::new(4);
        done.finish();
        done.close_receiver();
        assert!(done.error().is_none());
    }

    /// A producer that goes silent must surface as a bounded, clean error
    /// — never an indefinite hang of the consuming operator.
    #[test]
    fn pop_times_out_on_silent_producer() {
        let inbox = Inbox::with_timeout(4, Duration::from_millis(50));
        let t0 = Instant::now();
        assert!(inbox.pop().is_none());
        assert!(t0.elapsed() < Duration::from_secs(2));
        assert!(inbox.error().unwrap().contains("receive timeout"), "{:?}", inbox.error());
    }
}
