//! Credit-based flow control.
//!
//! A wire stream mirrors the semantics of the engine's bounded channels
//! (`mem_stream`/`network_stream` with a window of `W` tuples): at most
//! `W` tuples are in flight between sender and receiver, and a sender
//! whose receiver stalls blocks — identical backpressure behaviour on
//! both transports.
//!
//! Mechanically: the sender starts with `W` credits ([`CreditGate`]),
//! spends one per tuple, and blocks (bounded by a timeout) at zero. The
//! receiving side buffers tuples in a bounded [`Inbox`]; each consumer
//! `pop` returns one credit to the sender as a [`Frame::Credit`] on the
//! reverse direction of the same TCP connection.

use crate::frame::{write_frame, Frame};
use paradise_exec::{ExecError, Result, Tuple};
use paradise_obs::EventLog;
use std::collections::VecDeque;
use std::net::TcpStream;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

fn lock_err<T>(e: std::sync::PoisonError<T>) -> T {
    e.into_inner()
}

struct GateState {
    credits: u64,
    closed: Option<String>,
}

/// Sender-side credit counter: `acquire` blocks until the receiver has
/// granted room (or the link dies / the wait times out).
pub struct CreditGate {
    state: Mutex<GateState>,
    cv: Condvar,
    events: Option<Arc<EventLog>>,
}

impl CreditGate {
    /// A gate holding `initial` credits (the stream's window).
    pub fn new(initial: u64) -> CreditGate {
        CreditGate {
            state: Mutex::new(GateState { credits: initial, closed: None }),
            cv: Condvar::new(),
            events: None,
        }
    }

    /// A gate that reports flow-control stalls to `events`.
    pub fn with_events(initial: u64, events: Option<Arc<EventLog>>) -> CreditGate {
        CreditGate { events, ..CreditGate::new(initial) }
    }

    /// Takes one credit, waiting up to `timeout` for the receiver.
    pub fn acquire(&self, timeout: Duration) -> Result<()> {
        let deadline = Instant::now() + timeout;
        let mut st = self.state.lock().unwrap_or_else(lock_err);
        loop {
            if let Some(reason) = &st.closed {
                return Err(ExecError::Other(format!("stream closed: {reason}")));
            }
            if st.credits > 0 {
                st.credits -= 1;
                return Ok(());
            }
            let now = Instant::now();
            if now >= deadline {
                if let Some(events) = &self.events {
                    events
                        .emit("flow.stall", &[("timeout_ms", (timeout.as_millis() as u64).into())]);
                }
                return Err(ExecError::Other(
                    "flow-control timeout: receiver granted no credit (stalled or dead peer)"
                        .into(),
                ));
            }
            let (guard, _) = self.cv.wait_timeout(st, deadline - now).unwrap_or_else(lock_err);
            st = guard;
        }
    }

    /// Returns `n` credits (receiver consumed `n` tuples).
    pub fn grant(&self, n: u64) {
        let mut st = self.state.lock().unwrap_or_else(lock_err);
        st.credits += n;
        self.cv.notify_all();
    }

    /// Marks the stream dead; pending and future `acquire`s fail fast.
    pub fn close(&self, reason: &str) {
        let mut st = self.state.lock().unwrap_or_else(lock_err);
        if st.closed.is_none() {
            st.closed = Some(reason.to_string());
        }
        self.cv.notify_all();
    }
}

struct InboxState {
    queue: VecDeque<Tuple>,
    eos: bool,
    error: Option<String>,
    /// Reverse direction of the stream's TCP connection, used to return
    /// credits from the consumer thread.
    credit_sink: Option<TcpStream>,
}

/// Receiver-side bounded tuple buffer (capacity = the stream window).
pub struct Inbox {
    state: Mutex<InboxState>,
    cv: Condvar,
    capacity: usize,
}

impl Inbox {
    /// An empty inbox holding at most `capacity` tuples.
    pub fn new(capacity: usize) -> Inbox {
        Inbox {
            state: Mutex::new(InboxState {
                queue: VecDeque::new(),
                eos: false,
                error: None,
                credit_sink: None,
            }),
            cv: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// Attaches the connection on which `pop` returns credits.
    pub fn set_credit_sink(&self, conn: TcpStream) {
        self.state.lock().unwrap_or_else(lock_err).credit_sink = Some(conn);
    }

    /// Enqueues a received tuple (called by the connection reader). Blocks
    /// if the buffer is full — with a well-behaved peer this never
    /// happens, because credits bound the tuples in flight.
    pub fn push(&self, t: Tuple) {
        let mut st = self.state.lock().unwrap_or_else(lock_err);
        while st.queue.len() >= self.capacity && st.error.is_none() {
            st = self.cv.wait(st).unwrap_or_else(lock_err);
        }
        st.queue.push_back(t);
        self.cv.notify_all();
    }

    /// Marks the stream complete (peer sent EOS).
    pub fn finish(&self) {
        let mut st = self.state.lock().unwrap_or_else(lock_err);
        st.eos = true;
        self.cv.notify_all();
    }

    /// Marks the stream broken (peer died / protocol error).
    pub fn fail(&self, reason: &str) {
        let mut st = self.state.lock().unwrap_or_else(lock_err);
        if st.error.is_none() {
            st.error = Some(reason.to_string());
        }
        self.cv.notify_all();
    }

    /// Dequeues the next tuple, blocking until one arrives, the peer
    /// finishes, or the link dies. Returns `None` on EOS *and* on link
    /// failure — check [`Inbox::error`] to distinguish. Each successful
    /// pop returns one credit to the sender.
    pub fn pop(&self) -> Option<Tuple> {
        let mut st = self.state.lock().unwrap_or_else(lock_err);
        loop {
            if let Some(t) = st.queue.pop_front() {
                self.cv.notify_all();
                // Return the credit on the reverse channel. Failures mean
                // the sender is gone; its own error handling covers that.
                if let Some(conn) = &mut st.credit_sink {
                    let _ = write_frame(conn, &Frame::Credit(1));
                }
                return Some(t);
            }
            if st.eos || st.error.is_some() {
                return None;
            }
            st = self.cv.wait(st).unwrap_or_else(lock_err);
        }
    }

    /// The abnormal-termination reason, if the link died.
    pub fn error(&self) -> Option<String> {
        self.state.lock().unwrap_or_else(lock_err).error.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use paradise_exec::value::Value;
    use std::sync::Arc;

    #[test]
    fn gate_blocks_and_unblocks() {
        let gate = Arc::new(CreditGate::new(2));
        gate.acquire(Duration::from_millis(10)).unwrap();
        gate.acquire(Duration::from_millis(10)).unwrap();
        // Exhausted: acquire times out.
        assert!(gate.acquire(Duration::from_millis(20)).is_err());
        // A concurrent grant unblocks a waiting acquire.
        let g2 = gate.clone();
        let waiter = std::thread::spawn(move || g2.acquire(Duration::from_secs(5)));
        std::thread::sleep(Duration::from_millis(10));
        gate.grant(1);
        waiter.join().unwrap().unwrap();
    }

    #[test]
    fn gate_close_fails_fast() {
        let gate = Arc::new(CreditGate::new(0));
        let g2 = gate.clone();
        let waiter = std::thread::spawn(move || g2.acquire(Duration::from_secs(30)));
        std::thread::sleep(Duration::from_millis(10));
        gate.close("peer died");
        let err = waiter.join().unwrap().unwrap_err();
        assert!(err.to_string().contains("peer died"), "{err}");
    }

    #[test]
    fn inbox_pop_blocks_until_push_and_drains_after_eos() {
        let inbox = Arc::new(Inbox::new(4));
        let i2 = inbox.clone();
        let consumer = std::thread::spawn(move || {
            let mut got = Vec::new();
            while let Some(t) = i2.pop() {
                got.push(t);
            }
            got
        });
        for v in 0..3 {
            inbox.push(Tuple::new(vec![Value::Int(v)]));
        }
        inbox.finish();
        let got = consumer.join().unwrap();
        assert_eq!(got.len(), 3);
        assert!(inbox.error().is_none());
    }

    #[test]
    fn inbox_fail_wakes_consumer() {
        let inbox = Arc::new(Inbox::new(4));
        let i2 = inbox.clone();
        let consumer = std::thread::spawn(move || i2.pop());
        std::thread::sleep(Duration::from_millis(10));
        inbox.fail("connection reset");
        assert!(consumer.join().unwrap().is_none());
        assert_eq!(inbox.error().unwrap(), "connection reset");
    }
}
