//! Connection management: timeouts, bounded retry with exponential
//! backoff, and socket defaults shared by every QC/DS connection.

use paradise_exec::{ExecError, Result};
use paradise_obs::EventLog;
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::Duration;

/// Tunables for every connection the transport makes.
#[derive(Debug, Clone)]
pub struct NetConfig {
    /// Per-attempt TCP connect timeout.
    pub connect_timeout: Duration,
    /// Socket read timeout. Reads that time out *between* frames count as
    /// idle (connections may legitimately sit quiet under backpressure);
    /// mid-frame timeouts are bounded separately.
    pub read_timeout: Duration,
    /// How long a sender waits for flow-control credit before declaring
    /// the receiver stalled or dead.
    pub send_timeout: Duration,
    /// How long a consumer waits for the next tuple of an open stream
    /// before declaring the producer stalled or dead.
    pub recv_timeout: Duration,
    /// Connect attempts beyond the first.
    pub max_retries: u32,
    /// Backoff before retry `n` is `base_backoff << n`, so the default
    /// schedule is 25 ms, 50 ms, 100 ms, 200 ms.
    pub base_backoff: Duration,
    /// Upper bound on a single retry backoff, however many attempts the
    /// schedule doubles through.
    pub max_backoff: Duration,
    /// Structured event log for connection retries and flow-control
    /// stalls (`None` → not logged).
    pub events: Option<Arc<EventLog>>,
}

impl Default for NetConfig {
    fn default() -> NetConfig {
        NetConfig {
            connect_timeout: Duration::from_secs(1),
            read_timeout: Duration::from_millis(100),
            send_timeout: Duration::from_secs(5),
            recv_timeout: Duration::from_secs(10),
            max_retries: 4,
            base_backoff: Duration::from_millis(25),
            max_backoff: Duration::from_secs(2),
            events: None,
        }
    }
}

impl NetConfig {
    /// A configuration with short waits for tests that exercise failure
    /// paths (stalled peers, dead servers) without multi-second sleeps.
    pub fn fast_fail() -> NetConfig {
        NetConfig {
            connect_timeout: Duration::from_millis(200),
            read_timeout: Duration::from_millis(20),
            send_timeout: Duration::from_millis(300),
            recv_timeout: Duration::from_millis(500),
            max_retries: 2,
            base_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_millis(40),
            events: None,
        }
    }
}

/// Backoff before retry `attempt` (1-based): `base_backoff << (attempt-1)`,
/// with the shift saturated and the product capped at `cfg.max_backoff`.
/// The naive `base * (1 << (attempt - 1))` overflowed the shift for
/// `attempt ≥ 33` — a debug-build panic, and a wrap to a near-zero backoff
/// in release — and grew without bound below that.
fn backoff_for_attempt(cfg: &NetConfig, attempt: u32) -> Duration {
    let exp = attempt.saturating_sub(1).min(16);
    cfg.base_backoff.saturating_mul(1u32 << exp).min(cfg.max_backoff)
}

/// Applies the socket defaults every Paradise connection uses: bounded
/// reads plus `TCP_NODELAY` (frames are small; Nagle would serialise the
/// credit round-trips that flow control depends on).
pub fn configure(conn: &TcpStream, cfg: &NetConfig) -> Result<()> {
    conn.set_read_timeout(Some(cfg.read_timeout))
        .map_err(|e| ExecError::Other(format!("net setup: {e}")))?;
    conn.set_nodelay(true).map_err(|e| ExecError::Other(format!("net setup: {e}")))?;
    Ok(())
}

/// Connects to `addr`, retrying up to `cfg.max_retries` times with
/// exponential backoff — a data server that is still binding its listener
/// (cluster start-up) looks identical to a dead one, and backoff rides out
/// the former without hanging on the latter.
pub fn connect_with_retry(addr: SocketAddr, cfg: &NetConfig) -> Result<TcpStream> {
    let mut last_err = None;
    for attempt in 0..=cfg.max_retries {
        if attempt > 0 {
            if let Some(events) = &cfg.events {
                events.emit(
                    "net.retry",
                    &[("addr", addr.to_string().into()), ("attempt", u64::from(attempt).into())],
                );
            }
            std::thread::sleep(backoff_for_attempt(cfg, attempt));
        }
        // `net.connect` injects per-attempt connection failures (a data
        // server that is down, partitioned, or still binding).
        if let Err(msg) = paradise_util::failpoint::check("net.connect") {
            last_err = Some(std::io::Error::other(format!("injected fault: {msg}")));
            continue;
        }
        match TcpStream::connect_timeout(&addr, cfg.connect_timeout) {
            Ok(conn) => {
                configure(&conn, cfg)?;
                return Ok(conn);
            }
            Err(e) => last_err = Some(e),
        }
    }
    Err(ExecError::Other(format!(
        "net connect: {addr} unreachable after {} attempts: {}",
        cfg.max_retries + 1,
        last_err.expect("at least one attempt")
    )))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    #[test]
    fn connect_to_live_listener() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let conn = connect_with_retry(addr, &NetConfig::fast_fail()).unwrap();
        assert!(conn.peer_addr().is_ok());
    }

    #[test]
    fn connect_retries_until_server_appears() {
        // Reserve a port, free it, and only start the real listener after
        // the first attempt has already failed: success proves retry.
        let probe = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = probe.local_addr().unwrap();
        drop(probe);
        let spawn = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(30));
            let listener = TcpListener::bind(addr).unwrap();
            let _ = listener.accept();
        });
        let cfg = NetConfig {
            max_retries: 8,
            base_backoff: Duration::from_millis(15),
            ..NetConfig::fast_fail()
        };
        let conn = connect_with_retry(addr, &cfg);
        spawn.join().unwrap();
        assert!(conn.is_ok(), "{:?}", conn.err().map(|e| e.to_string()));
    }

    /// Regression (conn.rs:84 bug): the retry backoff used
    /// `base_backoff * (1 << (attempt - 1))`, which overflows the shift at
    /// `attempt ≥ 33` (debug panic / release wrap to ~zero backoff) and
    /// was uncapped below that. The fixed schedule saturates and caps.
    #[test]
    fn backoff_saturates_shift_and_caps_at_max() {
        let cfg = NetConfig {
            base_backoff: Duration::from_millis(25),
            max_backoff: Duration::from_millis(500),
            ..NetConfig::default()
        };
        assert_eq!(backoff_for_attempt(&cfg, 1), Duration::from_millis(25));
        assert_eq!(backoff_for_attempt(&cfg, 2), Duration::from_millis(50));
        assert_eq!(backoff_for_attempt(&cfg, 5), Duration::from_millis(400));
        // Beyond the cap the schedule is flat.
        assert_eq!(backoff_for_attempt(&cfg, 6), Duration::from_millis(500));
        // Attempts that used to overflow the shift stay at the cap.
        for attempt in [32, 33, 64, 1000, u32::MAX] {
            assert_eq!(backoff_for_attempt(&cfg, attempt), Duration::from_millis(500));
        }
    }

    #[test]
    fn connect_gives_up_after_bounded_retries() {
        // A port with nothing listening on it.
        let probe = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = probe.local_addr().unwrap();
        drop(probe);
        let t0 = std::time::Instant::now();
        let err = connect_with_retry(addr, &NetConfig::fast_fail()).unwrap_err();
        assert!(err.to_string().contains("after 3 attempts"), "{err}");
        // Bounded: fast-fail config must not spin for seconds.
        assert!(t0.elapsed() < Duration::from_secs(5));
    }
}
