//! The data-server accept loop.
//!
//! Paper §2.2/Figure 2.1: each node runs a Data Server process; the Query
//! Coordinator talks to all of them. Here one [`DataServer`] listens per
//! cluster endpoint (every DS node plus one store-less listener for the
//! QC) and serves three kinds of connection:
//!
//! * **tuple streams** — a peer opens with [`Frame::OpenStream`] and
//!   pushes credit-controlled tuples into the registered [`Inbox`];
//! * **tile pulls** — [`Frame::PullTile`] requests are answered from the
//!   node's raster tile file (§2.5.2); a connection serves many pulls;
//! * **remote scans** — [`Frame::Scan`] starts a scan operator on the
//!   serving node, streaming a fragment's tuples back under the client's
//!   credit window.

use crate::conn::NetConfig;
use crate::flow::{CreditGate, Inbox};
use crate::frame::{read_frame, write_frame, Frame, ReadOutcome};
use paradise_exec::raster_store::TILE_FILE;
use paradise_exec::{ExecError, Result, Tuple};
use paradise_obs::MetricsRegistry;
use paradise_storage::{Oid, Store};
use std::collections::HashMap;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

fn lock_err<T>(e: std::sync::PoisonError<T>) -> T {
    e.into_inner()
}

/// Maps stream ids to the inboxes awaiting them. Shared by every server
/// in the process; stream ids are allocated centrally by the transport.
#[derive(Default)]
pub struct Registry {
    streams: Mutex<HashMap<u64, Arc<Inbox>>>,
}

impl Registry {
    /// Announces an inbox for stream `id` (done *before* the sender
    /// connects, so the server can never see an unknown id from a
    /// well-behaved peer).
    pub fn register(&self, id: u64, inbox: Arc<Inbox>) {
        self.streams.lock().unwrap_or_else(lock_err).insert(id, inbox);
    }

    /// Claims (removes) the inbox for stream `id`.
    pub fn take(&self, id: u64) -> Option<Arc<Inbox>> {
        self.streams.lock().unwrap_or_else(lock_err).remove(&id)
    }
}

/// One listening endpoint of the cluster.
pub struct DataServer {
    addr: SocketAddr,
    shut: Arc<AtomicBool>,
    accept_join: Mutex<Option<std::thread::JoinHandle<()>>>,
}

impl DataServer {
    /// Binds a loopback listener and starts the accept loop. `store` is
    /// `None` for the QC endpoint (it receives streams but owns no data);
    /// `obs` is the node's metrics registry, answered to `StatsPull`
    /// requests (`None` → stats pulls report an error).
    pub fn start(
        store: Option<Arc<Store>>,
        registry: Arc<Registry>,
        cfg: NetConfig,
        obs: Option<Arc<MetricsRegistry>>,
    ) -> Result<DataServer> {
        let listener = TcpListener::bind("127.0.0.1:0")
            .map_err(|e| ExecError::Other(format!("net bind: {e}")))?;
        let addr = listener.local_addr().map_err(|e| ExecError::Other(format!("net bind: {e}")))?;
        listener.set_nonblocking(true).map_err(|e| ExecError::Other(format!("net bind: {e}")))?;
        let shut = Arc::new(AtomicBool::new(false));
        let shut2 = shut.clone();
        let accept_join = std::thread::spawn(move || {
            while !shut2.load(Ordering::Relaxed) {
                match listener.accept() {
                    Ok((conn, _peer)) => {
                        let store = store.clone();
                        let registry = registry.clone();
                        let cfg = cfg.clone();
                        let shut = shut2.clone();
                        let obs = obs.clone();
                        std::thread::spawn(move || handle(conn, store, registry, cfg, obs, shut));
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(2));
                    }
                    Err(_) => break,
                }
            }
        });
        Ok(DataServer { addr, shut, accept_join: Mutex::new(Some(accept_join)) })
    }

    /// The address peers connect to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting and winds down handler threads. Idempotent.
    pub fn shutdown(&self) {
        self.shut.store(true, Ordering::Relaxed);
        if let Some(j) = self.accept_join.lock().unwrap_or_else(lock_err).take() {
            let _ = j.join();
        }
    }
}

impl Drop for DataServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Dispatches one accepted connection by its first frame.
fn handle(
    mut conn: TcpStream,
    store: Option<Arc<Store>>,
    registry: Arc<Registry>,
    cfg: NetConfig,
    obs: Option<Arc<MetricsRegistry>>,
    shut: Arc<AtomicBool>,
) {
    let _ = conn.set_read_timeout(Some(cfg.read_timeout));
    let _ = conn.set_nodelay(true);
    loop {
        match read_frame(&mut conn) {
            Ok(ReadOutcome::Frame(Frame::OpenStream { stream, window })) => {
                serve_stream(conn, &registry, stream, window, &shut);
                return;
            }
            Ok(ReadOutcome::Frame(Frame::PullTile(oid))) => {
                // Pull connections are pooled: keep answering requests on
                // this socket until the peer hangs up.
                if serve_pull(&mut conn, store.as_deref(), &oid).is_err() {
                    return;
                }
            }
            Ok(ReadOutcome::Frame(Frame::Scan { file, window })) => {
                serve_scan(conn, store.as_deref(), &cfg, &file, window);
                return;
            }
            Ok(ReadOutcome::Frame(Frame::StatsPull)) => {
                // Stats connections are pooled like pull connections: one
                // socket can interleave tile pulls and stats pulls.
                let reply = match &obs {
                    Some(reg) => Frame::StatsReply(reg.samples()),
                    None => Frame::Error("no metrics registry on this endpoint".into()),
                };
                if write_frame(&mut conn, &reply).is_err() {
                    return;
                }
            }
            Ok(ReadOutcome::Frame(_)) => {
                let _ = write_frame(&mut conn, &Frame::Error("unexpected frame".into()));
                return;
            }
            Ok(ReadOutcome::Idle) => {
                if shut.load(Ordering::Relaxed) {
                    return;
                }
            }
            Ok(ReadOutcome::Closed) | Err(_) => return,
        }
    }
}

/// Receives a credit-controlled tuple stream into its registered inbox.
fn serve_stream(
    mut conn: TcpStream,
    registry: &Registry,
    stream: u64,
    _window: u32,
    shut: &AtomicBool,
) {
    let Some(inbox) = registry.take(stream) else {
        let _ = write_frame(&mut conn, &Frame::Error(format!("unknown stream {stream}")));
        return;
    };
    // The reverse direction of this socket carries the credits granted as
    // the consumer pops tuples.
    match conn.try_clone() {
        Ok(back) => inbox.set_credit_sink(back),
        Err(e) => {
            inbox.fail(&format!("credit channel: {e}"));
            return;
        }
    }
    loop {
        match read_frame(&mut conn) {
            Ok(ReadOutcome::Frame(Frame::Tuple(bytes))) => match Tuple::decode(&bytes) {
                Ok(t) => {
                    if !inbox.push(t) {
                        // Stream went terminal (receiver dropped or link
                        // failed): stop reading; the closing socket tells
                        // the sender.
                        return;
                    }
                }
                Err(e) => {
                    inbox.fail(&format!("tuple decode: {e}"));
                    return;
                }
            },
            Ok(ReadOutcome::Frame(Frame::Eos)) => {
                inbox.finish();
                return;
            }
            Ok(ReadOutcome::Frame(Frame::Error(msg))) => {
                inbox.fail(&msg);
                return;
            }
            Ok(ReadOutcome::Frame(_)) => {
                inbox.fail("unexpected frame on tuple stream");
                return;
            }
            Ok(ReadOutcome::Idle) => {
                if shut.load(Ordering::Relaxed) {
                    inbox.fail("server shutdown");
                    return;
                }
            }
            Ok(ReadOutcome::Closed) => {
                inbox.fail("sender closed connection before EOS");
                return;
            }
            Err(e) => {
                inbox.fail(&e.to_string());
                return;
            }
        }
    }
}

/// Answers one tile pull from the node's raster tile file. The raw stored
/// bytes cross the wire; decompression stays with the requester (§2.5.2).
fn serve_pull(conn: &mut TcpStream, store: Option<&Store>, oid_bytes: &[u8; 10]) -> Result<()> {
    let reply = (|| -> Result<Frame> {
        let store = store.ok_or_else(|| ExecError::NotFound("no store on this endpoint".into()))?;
        let oid = Oid::from_bytes(oid_bytes).ok_or(ExecError::Codec("bad oid in PullTile"))?;
        let file = store.file(TILE_FILE).ok_or_else(|| ExecError::NotFound("tile file".into()))?;
        Ok(Frame::TileData(file.read(oid)?))
    })();
    match reply {
        Ok(frame) => write_frame(conn, &frame).map(|_| ()),
        Err(e) => {
            // Report the failure to the peer but keep the connection: a
            // missing tile must not poison the pooled socket.
            write_frame(conn, &Frame::Error(e.to_string())).map(|_| ())
        }
    }
}

/// Runs a scan operator for a remote peer: every record of the fragment's
/// heap file goes back as a tuple frame, gated by the client's credits.
fn serve_scan(
    mut conn: TcpStream,
    store: Option<&Store>,
    cfg: &NetConfig,
    file: &str,
    window: u32,
) {
    let Some(file) = store.and_then(|s| s.file(file)) else {
        let _ = write_frame(&mut conn, &Frame::Error(format!("no fragment file {file:?}")));
        return;
    };
    let gate = Arc::new(CreditGate::with_events(u64::from(window), cfg.events.clone()));
    // Reverse direction: the client returns credits as it consumes.
    let Ok(mut back) = conn.try_clone() else {
        let _ = write_frame(&mut conn, &Frame::Error("credit channel failed".into()));
        return;
    };
    let gate2 = gate.clone();
    std::thread::spawn(move || loop {
        match read_frame(&mut back) {
            Ok(ReadOutcome::Frame(Frame::Credit(n))) => gate2.grant(u64::from(n)),
            Ok(ReadOutcome::Idle) => {}
            Ok(ReadOutcome::Frame(_)) | Ok(ReadOutcome::Closed) | Err(_) => {
                gate2.close("scan client went away");
                return;
            }
        }
    });
    let mut failure: Option<ExecError> = None;
    let walk = file.for_each(|_, bytes| {
        let step = gate
            .acquire(cfg.send_timeout)
            .and_then(|()| write_frame(&mut conn, &Frame::Tuple(bytes)).map(|_| ()));
        if let Err(e) = step {
            failure = Some(e);
            return Err(paradise_storage::StorageError::Corrupt("remote scan aborted"));
        }
        Ok(())
    });
    if let Some(e) = failure {
        let _ = write_frame(&mut conn, &Frame::Error(e.to_string()));
    } else if let Err(e) = walk {
        let _ = write_frame(&mut conn, &Frame::Error(e.to_string()));
    } else {
        let _ = write_frame(&mut conn, &Frame::Eos);
    }
    let _ = conn.shutdown(std::net::Shutdown::Both);
}
