//! The TCP implementation of the engine's [`WireTransport`] trait.
//!
//! [`TcpTransport::serve`] starts one [`DataServer`] per cluster node plus
//! a store-less one for the Query Coordinator, then plugs into
//! [`paradise_exec::Cluster`] via `set_transport(Transport::Tcp(..))`.
//! Operators keep using the same `TupleTx`/`TupleRx` interface; the only
//! difference is that cross-node tuples now really cross a socket.

use crate::conn::{connect_with_retry, NetConfig};
use crate::flow::{CreditGate, Inbox};
use crate::frame::{read_frame, write_frame, Frame, ReadOutcome};
use crate::server::{DataServer, Registry};
use paradise_exec::cluster::Node;
use paradise_exec::value::TileRef;
use paradise_exec::{ExecError, NodeId, RemoteRx, RemoteTx, Result, Tuple, WireTransport};
use paradise_obs::MetricSample;
use std::collections::HashMap;
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

fn lock_err<T>(e: std::sync::PoisonError<T>) -> T {
    e.into_inner()
}

/// Raw wire-level counters (frames and bytes actually written to sockets).
/// Distinct from the engine's `NetStats`, which counts *logical* traffic at
/// the transport-independent choke point — these let tests prove that the
/// logical traffic really flowed over TCP.
#[derive(Debug, Default)]
pub struct WireStats {
    /// Bytes written to sockets (frame headers included).
    pub bytes_sent: AtomicU64,
    /// Frames written to sockets.
    pub frames_sent: AtomicU64,
}

/// The sending endpoint of one TCP tuple stream.
struct TcpTx {
    conn: Mutex<TcpStream>,
    gate: Arc<CreditGate>,
    cfg: NetConfig,
    stats: Arc<WireStats>,
}

impl RemoteTx for TcpTx {
    fn send(&self, t: Tuple) -> Result<()> {
        // Flow control first: block until the receiver has window room.
        self.gate.acquire(self.cfg.send_timeout)?;
        let mut conn = self.conn.lock().unwrap_or_else(lock_err);
        let n = write_frame(&mut *conn, &Frame::Tuple(t.encode()))?;
        self.stats.bytes_sent.fetch_add(n as u64, Ordering::Relaxed);
        self.stats.frames_sent.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }
}

impl Drop for TcpTx {
    fn drop(&mut self) {
        // Last clone gone: tell the receiver the stream is complete, then
        // close the socket (which also stops the credit-reader thread).
        let mut conn = self.conn.lock().unwrap_or_else(lock_err);
        if write_frame(&mut *conn, &Frame::Eos).is_ok() {
            self.stats.frames_sent.fetch_add(1, Ordering::Relaxed);
        }
        let _ = conn.shutdown(std::net::Shutdown::Both);
    }
}

/// The receiving endpoint: pops the inbox the data server fills.
struct InboxRx {
    inbox: Arc<Inbox>,
}

impl RemoteRx for InboxRx {
    fn recv(&mut self) -> Option<Tuple> {
        self.inbox.pop()
    }

    fn link_error(&self) -> Option<String> {
        self.inbox.error()
    }
}

impl Drop for InboxRx {
    fn drop(&mut self) {
        // A receiver dropped before EOS must release the connection
        // reader, which may be blocked pushing into a full inbox.
        self.inbox.close_receiver();
    }
}

/// Reads tuple frames straight off a socket (remote-scan results),
/// returning one credit per consumed tuple.
struct ScanRx {
    conn: TcpStream,
    done: bool,
    error: Option<String>,
    idle_limit: u32,
}

impl RemoteRx for ScanRx {
    fn recv(&mut self) -> Option<Tuple> {
        if self.done {
            return None;
        }
        let mut idles = 0;
        loop {
            match read_frame(&mut self.conn) {
                Ok(ReadOutcome::Frame(Frame::Tuple(bytes))) => match Tuple::decode(&bytes) {
                    Ok(t) => {
                        let _ = write_frame(&mut self.conn, &Frame::Credit(1));
                        return Some(t);
                    }
                    Err(e) => {
                        self.error = Some(format!("tuple decode: {e}"));
                        self.done = true;
                        return None;
                    }
                },
                Ok(ReadOutcome::Frame(Frame::Eos)) => {
                    self.done = true;
                    return None;
                }
                Ok(ReadOutcome::Frame(Frame::Error(msg))) => {
                    self.error = Some(msg);
                    self.done = true;
                    return None;
                }
                Ok(ReadOutcome::Frame(_)) => {
                    self.error = Some("unexpected frame in scan stream".into());
                    self.done = true;
                    return None;
                }
                Ok(ReadOutcome::Idle) => {
                    idles += 1;
                    if idles > self.idle_limit {
                        self.error = Some("remote scan timed out".into());
                        self.done = true;
                        return None;
                    }
                }
                Ok(ReadOutcome::Closed) => {
                    self.error = Some("server closed scan before EOS".into());
                    self.done = true;
                    return None;
                }
                Err(e) => {
                    self.error = Some(e.to_string());
                    self.done = true;
                    return None;
                }
            }
        }
    }

    fn link_error(&self) -> Option<String> {
        self.error.clone()
    }
}

/// TCP transport for a whole cluster: servers, stream opening, pooled tile
/// pulls, and graceful shutdown.
pub struct TcpTransport {
    cfg: NetConfig,
    /// One server per DS node, plus the QC endpoint last.
    servers: Vec<DataServer>,
    addrs: Vec<SocketAddr>,
    registry: Arc<Registry>,
    next_stream: AtomicU64,
    /// Idle pull connections, keyed by owning node.
    pull_pool: Mutex<HashMap<NodeId, Vec<TcpStream>>>,
    stats: Arc<WireStats>,
    shut: AtomicBool,
}

impl TcpTransport {
    /// Starts the cluster's data servers (one per node, plus the QC
    /// endpoint) with default tunables.
    pub fn serve(nodes: &[Arc<Node>]) -> Result<Arc<TcpTransport>> {
        TcpTransport::serve_with(nodes, NetConfig::default())
    }

    /// Starts the cluster's data servers with explicit tunables.
    pub fn serve_with(nodes: &[Arc<Node>], cfg: NetConfig) -> Result<Arc<TcpTransport>> {
        let registry = Arc::new(Registry::default());
        let mut servers = Vec::with_capacity(nodes.len() + 1);
        for node in nodes {
            servers.push(DataServer::start(
                Some(node.store.clone()),
                registry.clone(),
                cfg.clone(),
                Some(node.obs.clone()),
            )?);
        }
        // The QC endpoint: receives result streams, owns no data and
        // serves no per-node stats (the QC reads its registry in-process).
        servers.push(DataServer::start(None, registry.clone(), cfg.clone(), None)?);
        let addrs = servers.iter().map(|s| s.addr()).collect();
        Ok(Arc::new(TcpTransport {
            cfg,
            servers,
            addrs,
            registry,
            next_stream: AtomicU64::new(1),
            pull_pool: Mutex::new(HashMap::new()),
            stats: Arc::new(WireStats::default()),
            shut: AtomicBool::new(false),
        }))
    }

    /// Wire-level counters (for tests and diagnostics).
    pub fn wire_stats(&self) -> &WireStats {
        &self.stats
    }

    /// Publishes the wire-level counters into a metrics registry as lazy
    /// collectors (`net.wire.bytes_sent`, `net.wire.frames_sent`), so an
    /// `EXPLAIN ANALYZE` profile can prove traffic really crossed sockets.
    pub fn register_metrics(&self, obs: &paradise_obs::MetricsRegistry) {
        let stats = self.stats.clone();
        obs.register_collector("net.wire.bytes_sent", move || {
            stats.bytes_sent.load(Ordering::Relaxed)
        });
        let stats = self.stats.clone();
        obs.register_collector("net.wire.frames_sent", move || {
            stats.frames_sent.load(Ordering::Relaxed)
        });
    }

    /// The listening address of endpoint `id` (a node, or the QC).
    pub fn addr(&self, id: NodeId) -> Option<SocketAddr> {
        self.addrs.get(id).copied()
    }

    fn ensure_up(&self) -> Result<()> {
        if self.shut.load(Ordering::Relaxed) {
            return Err(ExecError::Other("transport is shut down".into()));
        }
        Ok(())
    }

    fn endpoint_addr(&self, id: NodeId) -> Result<SocketAddr> {
        self.addr(id).ok_or_else(|| ExecError::Other(format!("no endpoint {id} in this cluster")))
    }

    /// Starts a scan operator on `owner`'s data server and returns the
    /// result stream (§2.3's remote scan leaf: the fragment's tuples come
    /// back over the wire under a credit window).
    pub fn remote_scan(
        &self,
        owner: NodeId,
        file: &str,
        window: usize,
    ) -> Result<Box<dyn RemoteRx>> {
        self.ensure_up()?;
        let mut conn = connect_with_retry(self.endpoint_addr(owner)?, &self.cfg)?;
        let window = u32::try_from(window.max(1)).unwrap_or(u32::MAX);
        let n = write_frame(&mut conn, &Frame::Scan { file: file.to_string(), window })?;
        self.stats.bytes_sent.fetch_add(n as u64, Ordering::Relaxed);
        self.stats.frames_sent.fetch_add(1, Ordering::Relaxed);
        // Allow generous idling: an upstream-stalled scan is not an error.
        Ok(Box::new(ScanRx { conn, done: false, error: None, idle_limit: 600 }))
    }

    fn pooled_pull_conn(&self, owner: NodeId) -> Result<TcpStream> {
        if let Some(conn) =
            self.pull_pool.lock().unwrap_or_else(lock_err).get_mut(&owner).and_then(Vec::pop)
        {
            return Ok(conn);
        }
        connect_with_retry(self.endpoint_addr(owner)?, &self.cfg)
    }
}

impl WireTransport for TcpTransport {
    fn open(
        &self,
        window: usize,
        _src: NodeId,
        dst: NodeId,
    ) -> Result<(Arc<dyn RemoteTx>, Box<dyn RemoteRx>)> {
        self.ensure_up()?;
        let id = self.next_stream.fetch_add(1, Ordering::Relaxed);
        let window = window.max(1);
        let inbox = Arc::new(Inbox::with_timeout(window, self.cfg.recv_timeout));
        // Register before connecting: the server must be able to resolve
        // the stream id the moment OpenStream arrives.
        self.registry.register(id, inbox.clone());
        let conn = match connect_with_retry(self.endpoint_addr(dst)?, &self.cfg) {
            Ok(c) => c,
            Err(e) => {
                let _ = self.registry.take(id);
                return Err(e);
            }
        };
        let mut opener =
            conn.try_clone().map_err(|e| ExecError::Other(format!("net clone: {e}")))?;
        let n = write_frame(
            &mut opener,
            &Frame::OpenStream { stream: id, window: u32::try_from(window).unwrap_or(u32::MAX) },
        )?;
        self.stats.bytes_sent.fetch_add(n as u64, Ordering::Relaxed);
        self.stats.frames_sent.fetch_add(1, Ordering::Relaxed);
        let gate = Arc::new(CreditGate::with_events(window as u64, self.cfg.events.clone()));
        // Credit reader: the receiver's pops come back on this socket.
        let gate2 = gate.clone();
        let mut credit_side = opener;
        std::thread::spawn(move || loop {
            match read_frame(&mut credit_side) {
                Ok(ReadOutcome::Frame(Frame::Credit(n))) => gate2.grant(u64::from(n)),
                Ok(ReadOutcome::Frame(Frame::Error(msg))) => {
                    gate2.close(&msg);
                    return;
                }
                Ok(ReadOutcome::Idle) => {}
                Ok(ReadOutcome::Frame(_)) | Ok(ReadOutcome::Closed) => {
                    gate2.close("stream connection closed");
                    return;
                }
                Err(e) => {
                    gate2.close(&e.to_string());
                    return;
                }
            }
        });
        let tx = TcpTx {
            conn: Mutex::new(conn),
            gate,
            cfg: self.cfg.clone(),
            stats: self.stats.clone(),
        };
        Ok((Arc::new(tx), Box::new(InboxRx { inbox })))
    }

    fn fetch_tile(&self, _requester: NodeId, tile: &TileRef) -> Result<Vec<u8>> {
        self.ensure_up()?;
        let owner = tile.node as NodeId;
        let mut conn = self.pooled_pull_conn(owner)?;
        let n = write_frame(&mut conn, &Frame::PullTile(tile.oid.to_bytes()))?;
        self.stats.bytes_sent.fetch_add(n as u64, Ordering::Relaxed);
        self.stats.frames_sent.fetch_add(1, Ordering::Relaxed);
        let mut idles = 0;
        loop {
            match read_frame(&mut conn)? {
                ReadOutcome::Frame(Frame::TileData(bytes)) => {
                    // Healthy exchange: return the socket to the pool.
                    self.pull_pool
                        .lock()
                        .unwrap_or_else(lock_err)
                        .entry(owner)
                        .or_default()
                        .push(conn);
                    return Ok(bytes);
                }
                ReadOutcome::Frame(Frame::Error(msg)) => {
                    return Err(ExecError::Other(format!("remote pull failed: {msg}")))
                }
                ReadOutcome::Frame(_) => {
                    return Err(ExecError::Other("unexpected frame in pull reply".into()))
                }
                ReadOutcome::Idle => {
                    idles += 1;
                    if idles > 100 {
                        return Err(ExecError::Other("tile pull timed out".into()));
                    }
                }
                ReadOutcome::Closed => {
                    return Err(ExecError::Other("server closed pull connection".into()))
                }
            }
        }
    }

    fn pull_stats(&self, node: NodeId) -> Result<Vec<MetricSample>> {
        self.ensure_up()?;
        if node >= self.addrs.len().saturating_sub(1) {
            return Err(ExecError::Other(format!("no data server {node} in this cluster")));
        }
        // Stats pulls share the pooled pull connections: the server's
        // dispatch loop answers PullTile and StatsPull interleaved.
        let mut conn = self.pooled_pull_conn(node)?;
        let n = write_frame(&mut conn, &Frame::StatsPull)?;
        self.stats.bytes_sent.fetch_add(n as u64, Ordering::Relaxed);
        self.stats.frames_sent.fetch_add(1, Ordering::Relaxed);
        let mut idles = 0;
        loop {
            match read_frame(&mut conn)? {
                ReadOutcome::Frame(Frame::StatsReply(samples)) => {
                    self.pull_pool
                        .lock()
                        .unwrap_or_else(lock_err)
                        .entry(node)
                        .or_default()
                        .push(conn);
                    return Ok(samples);
                }
                ReadOutcome::Frame(Frame::Error(msg)) => {
                    return Err(ExecError::Other(format!("remote stats pull failed: {msg}")))
                }
                ReadOutcome::Frame(_) => {
                    return Err(ExecError::Other("unexpected frame in stats reply".into()))
                }
                ReadOutcome::Idle => {
                    idles += 1;
                    if idles > 100 {
                        return Err(ExecError::Other("stats pull timed out".into()));
                    }
                }
                ReadOutcome::Closed => {
                    return Err(ExecError::Other("server closed stats connection".into()))
                }
            }
        }
    }

    fn shutdown(&self) {
        if self.shut.swap(true, Ordering::Relaxed) {
            return;
        }
        self.pull_pool.lock().unwrap_or_else(lock_err).clear();
        for s in &self.servers {
            s.shutdown();
        }
    }
}

impl Drop for TcpTransport {
    fn drop(&mut self) {
        self.shutdown();
    }
}
