//! The wire protocol: length-prefixed binary frames.
//!
//! Every message on a QC/DS connection is one frame:
//!
//! ```text
//! +----------------+-----------+------------------+
//! | len: u32 (LE)  | tag: u8   | payload (len-1 B)|
//! +----------------+-----------+------------------+
//! ```
//!
//! `len` counts the tag byte plus the payload, so an empty frame has
//! `len == 1`. Tuples travel in the engine's own self-describing tuple
//! encoding ([`paradise_exec::Tuple::encode`]), which already ships large
//! attributes (stored rasters) by reference — the mapping table crosses
//! the wire, the pixels do not (§2.5.2).

use paradise_obs::{MetricSample, SampleKind};

use paradise_exec::{ExecError, Result};
use std::io::{Read, Write};

/// Upper bound on a single frame's payload; a peer announcing more is
/// treated as corrupt rather than allocated for.
pub const MAX_FRAME: usize = 64 << 20;

/// One protocol message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Frame {
    /// Client → server: bind this connection to tuple stream `stream`,
    /// whose flow-control window is `window` tuples. The sender starts
    /// with `window` credits.
    OpenStream {
        /// Stream id (allocated by the transport).
        stream: u64,
        /// Flow-control window in tuples.
        window: u32,
    },
    /// One encoded tuple ([`paradise_exec::Tuple::encode`] bytes).
    Tuple(Vec<u8>),
    /// The sending operator finished; no more tuples follow.
    Eos,
    /// Receiver → sender: `n` tuples were consumed, send `n` more.
    Credit(u32),
    /// Pull the raw stored bytes of one raster tile object (§2.5.2).
    /// The 10 bytes are the storage `Oid` encoding.
    PullTile([u8; 10]),
    /// Successful pull response: the raw (possibly compressed) tile bytes.
    TileData(Vec<u8>),
    /// Start a remote scan operator: the data server streams every tuple
    /// of heap file `file` back over this connection (credit-controlled),
    /// then sends [`Frame::Eos`].
    Scan {
        /// Fragment heap-file name on the serving node.
        file: String,
        /// Flow-control window granted to the server.
        window: u32,
    },
    /// Request failed on the serving side.
    Error(String),
    /// QC → DS: send back a snapshot of this node's metrics registry
    /// (the monitoring plane's stats-pull, DESIGN §8.5).
    StatsPull,
    /// DS → QC: the node's registry snapshot as flattened samples.
    StatsReply(Vec<MetricSample>),
}

const TAG_OPEN: u8 = 1;
const TAG_TUPLE: u8 = 2;
const TAG_EOS: u8 = 3;
const TAG_CREDIT: u8 = 4;
const TAG_PULL: u8 = 5;
const TAG_TILE: u8 = 6;
const TAG_SCAN: u8 = 7;
const TAG_ERROR: u8 = 8;
const TAG_STATS_PULL: u8 = 9;
const TAG_STATS_REPLY: u8 = 10;

const KIND_COUNTER: u8 = 0;
const KIND_GAUGE: u8 = 1;

/// Serialises a sample list: `count: u32 LE`, then per sample
/// `kind: u8 | name_len: u16 LE | name | value: u64 LE`.
fn encode_samples(samples: &[MetricSample], out: &mut Vec<u8>) {
    out.extend_from_slice(&(samples.len() as u32).to_le_bytes());
    for s in samples {
        out.push(match s.kind {
            SampleKind::Counter => KIND_COUNTER,
            SampleKind::Gauge => KIND_GAUGE,
        });
        let name = s.name.as_bytes();
        let len = name.len().min(u16::MAX as usize);
        out.extend_from_slice(&(len as u16).to_le_bytes());
        out.extend_from_slice(&name[..len]);
        out.extend_from_slice(&s.value.to_le_bytes());
    }
}

/// Parses a sample list written by [`encode_samples`].
fn decode_samples(mut payload: &[u8]) -> Result<Vec<MetricSample>> {
    let bad = || ExecError::Codec("bad StatsReply payload");
    if payload.len() < 4 {
        return Err(bad());
    }
    let count = u32::from_le_bytes(payload[0..4].try_into().unwrap()) as usize;
    payload = &payload[4..];
    let mut out = Vec::with_capacity(count.min(1024));
    for _ in 0..count {
        if payload.len() < 3 {
            return Err(bad());
        }
        let kind = match payload[0] {
            KIND_COUNTER => SampleKind::Counter,
            KIND_GAUGE => SampleKind::Gauge,
            _ => return Err(bad()),
        };
        let name_len = u16::from_le_bytes(payload[1..3].try_into().unwrap()) as usize;
        payload = &payload[3..];
        if payload.len() < name_len + 8 {
            return Err(bad());
        }
        let name = String::from_utf8(payload[..name_len].to_vec()).map_err(|_| bad())?;
        let value = u64::from_le_bytes(payload[name_len..name_len + 8].try_into().unwrap());
        payload = &payload[name_len + 8..];
        out.push(MetricSample { name, kind, value });
    }
    if !payload.is_empty() {
        return Err(bad());
    }
    Ok(out)
}

fn io_err(ctx: &str, e: std::io::Error) -> ExecError {
    ExecError::Other(format!("net {ctx}: {e}"))
}

impl Frame {
    /// Serialises the frame (header + tag + payload).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut body = Vec::with_capacity(16);
        match self {
            Frame::OpenStream { stream, window } => {
                body.push(TAG_OPEN);
                body.extend_from_slice(&stream.to_le_bytes());
                body.extend_from_slice(&window.to_le_bytes());
            }
            Frame::Tuple(bytes) => {
                body.reserve(1 + bytes.len());
                body.push(TAG_TUPLE);
                body.extend_from_slice(bytes);
            }
            Frame::Eos => body.push(TAG_EOS),
            Frame::Credit(n) => {
                body.push(TAG_CREDIT);
                body.extend_from_slice(&n.to_le_bytes());
            }
            Frame::PullTile(oid) => {
                body.push(TAG_PULL);
                body.extend_from_slice(oid);
            }
            Frame::TileData(bytes) => {
                body.reserve(1 + bytes.len());
                body.push(TAG_TILE);
                body.extend_from_slice(bytes);
            }
            Frame::Scan { file, window } => {
                body.push(TAG_SCAN);
                body.extend_from_slice(&window.to_le_bytes());
                body.extend_from_slice(file.as_bytes());
            }
            Frame::Error(msg) => {
                body.push(TAG_ERROR);
                body.extend_from_slice(msg.as_bytes());
            }
            Frame::StatsPull => body.push(TAG_STATS_PULL),
            Frame::StatsReply(samples) => {
                body.push(TAG_STATS_REPLY);
                encode_samples(samples, &mut body);
            }
        }
        let mut out = Vec::with_capacity(4 + body.len());
        out.extend_from_slice(&(body.len() as u32).to_le_bytes());
        out.extend_from_slice(&body);
        out
    }

    /// Parses a frame body (tag + payload, header already stripped).
    pub fn from_body(body: &[u8]) -> Result<Frame> {
        let (&tag, payload) = body.split_first().ok_or(ExecError::Codec("empty frame body"))?;
        Ok(match tag {
            TAG_OPEN => {
                if payload.len() != 12 {
                    return Err(ExecError::Codec("bad OpenStream payload"));
                }
                Frame::OpenStream {
                    stream: u64::from_le_bytes(payload[0..8].try_into().unwrap()),
                    window: u32::from_le_bytes(payload[8..12].try_into().unwrap()),
                }
            }
            TAG_TUPLE => Frame::Tuple(payload.to_vec()),
            TAG_EOS => Frame::Eos,
            TAG_CREDIT => {
                if payload.len() != 4 {
                    return Err(ExecError::Codec("bad Credit payload"));
                }
                Frame::Credit(u32::from_le_bytes(payload.try_into().unwrap()))
            }
            TAG_PULL => {
                let oid: [u8; 10] =
                    payload.try_into().map_err(|_| ExecError::Codec("bad PullTile payload"))?;
                Frame::PullTile(oid)
            }
            TAG_TILE => Frame::TileData(payload.to_vec()),
            TAG_SCAN => {
                if payload.len() < 4 {
                    return Err(ExecError::Codec("bad Scan payload"));
                }
                Frame::Scan {
                    window: u32::from_le_bytes(payload[0..4].try_into().unwrap()),
                    file: String::from_utf8(payload[4..].to_vec())
                        .map_err(|_| ExecError::Codec("bad Scan file name"))?,
                }
            }
            TAG_ERROR => Frame::Error(String::from_utf8_lossy(payload).into_owned()),
            TAG_STATS_PULL => {
                if !payload.is_empty() {
                    return Err(ExecError::Codec("bad StatsPull payload"));
                }
                Frame::StatsPull
            }
            TAG_STATS_REPLY => Frame::StatsReply(decode_samples(payload)?),
            _ => return Err(ExecError::Codec("unknown frame tag")),
        })
    }
}

/// Writes one frame. Returns the number of bytes put on the wire.
///
/// The `net.write_frame` failpoint injects wire faults here: `error`
/// aborts the write (a reset connection), `drop` reports success without
/// touching the wire (a lost frame), `corrupt` flips the last body byte
/// before sending (a damaged frame the peer must reject cleanly).
pub fn write_frame(w: &mut impl Write, frame: &Frame) -> Result<usize> {
    let mut bytes = frame.to_bytes();
    match paradise_util::failpoint::trigger("net.write_frame") {
        None => {}
        Some(paradise_util::failpoint::Trigger::Error(msg)) => {
            return Err(ExecError::Other(format!("net write: injected fault: {msg}")))
        }
        Some(paradise_util::failpoint::Trigger::Drop) => return Ok(bytes.len()),
        Some(paradise_util::failpoint::Trigger::Corrupt) => {
            let last = bytes.len() - 1;
            bytes[last] ^= 0xA5;
        }
    }
    w.write_all(&bytes).map_err(|e| io_err("write", e))?;
    w.flush().map_err(|e| io_err("flush", e))?;
    Ok(bytes.len())
}

/// Outcome of a read attempt that tolerates read-timeouts between frames.
#[derive(Debug)]
pub enum ReadOutcome {
    /// A complete frame.
    Frame(Frame),
    /// The read timed out before the first byte of a frame arrived —
    /// the connection is merely idle, not broken.
    Idle,
    /// Clean EOF at a frame boundary (peer closed after a whole frame).
    Closed,
}

fn is_timeout(e: &std::io::Error) -> bool {
    matches!(e.kind(), std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut)
}

/// Accumulates exactly `buf.len()` bytes. `started` says whether earlier
/// bytes of the same frame were already consumed: mid-frame timeouts keep
/// trying (abandoning would desynchronise the stream). Returns
/// `Ok(Some(true))` when filled, `Ok(Some(false))` on an idle timeout
/// before the first byte, `Ok(None)` on clean EOF at a frame boundary,
/// and `Err` on mid-frame EOF or socket errors.
fn read_exact_idle(r: &mut impl Read, buf: &mut [u8], mut started: bool) -> Result<Option<bool>> {
    // A peer that stops mid-frame (as opposed to between frames) is broken,
    // not idle — but transient timeouts while a large frame drains are
    // normal. Tolerate a bounded number before declaring the link dead.
    const MAX_MIDFRAME_STALLS: u32 = 50;
    let mut stalls = 0;
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => {
                if filled == 0 && !started {
                    return Ok(None); // clean EOF at boundary
                }
                return Err(ExecError::Other("net read: connection closed mid-frame".into()));
            }
            Ok(n) => {
                filled += n;
                started = true;
                stalls = 0;
            }
            Err(e) if is_timeout(&e) => {
                if !started {
                    return Ok(Some(false)); // idle
                }
                stalls += 1;
                if stalls > MAX_MIDFRAME_STALLS {
                    return Err(ExecError::Other("net read: peer stalled mid-frame".into()));
                }
            }
            Err(e) => return Err(io_err("read", e)),
        }
    }
    Ok(Some(true))
}

/// Reads one frame, distinguishing idle timeouts and clean closes from
/// protocol errors.
///
/// The `net.read_frame` failpoint injects receive faults: `error` fails
/// the read (a reset connection), `drop` reports the connection closed,
/// `corrupt` flips the last body byte of the received frame before
/// decoding.
pub fn read_frame(r: &mut impl Read) -> Result<ReadOutcome> {
    let mut corrupt = false;
    match paradise_util::failpoint::trigger("net.read_frame") {
        None => {}
        Some(paradise_util::failpoint::Trigger::Error(msg)) => {
            return Err(ExecError::Other(format!("net read: injected fault: {msg}")))
        }
        Some(paradise_util::failpoint::Trigger::Drop) => return Ok(ReadOutcome::Closed),
        Some(paradise_util::failpoint::Trigger::Corrupt) => corrupt = true,
    }
    let mut header = [0u8; 4];
    match read_exact_idle(r, &mut header, false)? {
        None => return Ok(ReadOutcome::Closed),
        Some(false) => return Ok(ReadOutcome::Idle),
        Some(true) => {}
    }
    let len = u32::from_le_bytes(header) as usize;
    if len == 0 || len > MAX_FRAME {
        return Err(ExecError::Codec("bad frame length"));
    }
    let mut body = vec![0u8; len];
    match read_exact_idle(r, &mut body, true)? {
        Some(true) => {
            if corrupt {
                let last = body.len() - 1;
                body[last] ^= 0xA5;
            }
            Frame::from_body(&body).map(ReadOutcome::Frame)
        }
        _ => Err(ExecError::Other("net read: connection closed mid-frame".into())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(f: Frame) {
        let bytes = f.to_bytes();
        let len = u32::from_le_bytes(bytes[0..4].try_into().unwrap()) as usize;
        assert_eq!(len, bytes.len() - 4);
        assert_eq!(Frame::from_body(&bytes[4..]).unwrap(), f);
    }

    #[test]
    fn frame_roundtrips() {
        roundtrip(Frame::OpenStream { stream: 712, window: 256 });
        roundtrip(Frame::Tuple(vec![1, 2, 3, 255]));
        roundtrip(Frame::Tuple(Vec::new()));
        roundtrip(Frame::Eos);
        roundtrip(Frame::Credit(9000));
        roundtrip(Frame::PullTile([7; 10]));
        roundtrip(Frame::TileData(vec![0; 4096]));
        roundtrip(Frame::Scan { file: "__frag_roads".into(), window: 64 });
        roundtrip(Frame::Error("tile file missing".into()));
        roundtrip(Frame::StatsPull);
        roundtrip(Frame::StatsReply(Vec::new()));
        roundtrip(Frame::StatsReply(vec![
            MetricSample::new("wal.commits", SampleKind::Counter, 42),
            MetricSample::new("buffer.frames_cached", SampleKind::Gauge, 7),
            MetricSample::new("", SampleKind::Counter, u64::MAX),
        ]));
    }

    #[test]
    fn stats_frames_reject_malformed_payloads() {
        // StatsPull carries no payload.
        assert!(Frame::from_body(&[TAG_STATS_PULL, 0]).is_err());
        // Truncated count header.
        assert!(Frame::from_body(&[TAG_STATS_REPLY, 1, 0]).is_err());
        // Count says one sample, body empty.
        let mut body = vec![TAG_STATS_REPLY];
        body.extend_from_slice(&1u32.to_le_bytes());
        assert!(Frame::from_body(&body).is_err());
        // Unknown sample kind.
        let mut body = vec![TAG_STATS_REPLY];
        body.extend_from_slice(&1u32.to_le_bytes());
        body.push(9); // bad kind
        body.extend_from_slice(&0u16.to_le_bytes());
        body.extend_from_slice(&0u64.to_le_bytes());
        assert!(Frame::from_body(&body).is_err());
        // Trailing junk after the declared samples.
        let mut ok =
            Frame::StatsReply(vec![MetricSample::new("x", SampleKind::Counter, 1)]).to_bytes();
        ok.push(0xFF);
        assert!(Frame::from_body(&ok[4..]).is_err());
    }

    #[test]
    fn stream_of_frames_parses_in_order() {
        let frames = vec![
            Frame::OpenStream { stream: 1, window: 4 },
            Frame::Tuple(vec![42; 17]),
            Frame::Credit(2),
            Frame::Eos,
        ];
        let mut wire = Vec::new();
        for f in &frames {
            write_frame(&mut wire, f).unwrap();
        }
        let mut r = &wire[..];
        for f in &frames {
            match read_frame(&mut r).unwrap() {
                ReadOutcome::Frame(got) => assert_eq!(&got, f),
                _ => panic!("expected frame"),
            }
        }
        assert!(matches!(read_frame(&mut r).unwrap(), ReadOutcome::Closed));
    }

    #[test]
    fn rejects_garbage() {
        assert!(Frame::from_body(&[]).is_err());
        assert!(Frame::from_body(&[99]).is_err());
        assert!(Frame::from_body(&[TAG_CREDIT, 1]).is_err());
        // Oversized length header.
        let mut wire = ((MAX_FRAME + 1) as u32).to_le_bytes().to_vec();
        wire.push(TAG_EOS);
        assert!(read_frame(&mut &wire[..]).is_err());
    }
}
